#ifndef TENSORDASH_CORE_TENSORDASH_HH_
#define TENSORDASH_CORE_TENSORDASH_HH_

/**
 * @file
 * Umbrella header: the public API of the TensorDash library.
 *
 * Typical use:
 *
 *   #include "core/tensordash.hh"
 *
 *   tensordash::RunConfig cfg;                 // Table 2 defaults
 *   tensordash::ModelRunner runner(cfg);
 *   auto result = runner.runByName("VGG16");
 *   std::printf("speedup %.2fx\n", result.speedup());
 *
 * Lower-level entry points:
 *   - TensorDashPe / Tile: cycle-level models of the PE and tile
 *   - Dataflow: lower the three training convolutions into tile jobs
 *   - Accelerator: multi-tile simulation with memory traffic + energy
 *   - AreaModel / EnergyModel: Table 3 area/power and energy accounting
 *   - ModelZoo: the paper's workload suite
 */

#include "common/hashing.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/serial.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "core/result_store.hh"
#include "core/runner.hh"
#include "core/synth_cache.hh"
#include "models/model_zoo.hh"
#include "sim/accelerator.hh"
#include "sim/area_model.hh"
#include "sim/dataflow.hh"
#include "sim/energy.hh"
#include "sim/estimator.hh"
#include "sim/memory/compressing_dma.hh"
#include "sim/memory/dram.hh"
#include "sim/memory/sram.hh"
#include "sim/memory/transposer.hh"
#include "sim/mux_pattern.hh"
#include "sim/pe.hh"
#include "sim/power_gate.hh"
#include "sim/scheduler.hh"
#include "sim/tile.hh"
#include "sparsity/generator.hh"
#include "sparsity/temporal.hh"
#include "tensor/bfloat16.hh"
#include "tensor/conv_ref.hh"
#include "tensor/tensor.hh"

#endif // TENSORDASH_CORE_TENSORDASH_HH_
