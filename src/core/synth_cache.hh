#ifndef TENSORDASH_CORE_SYNTH_CACHE_HH_
#define TENSORDASH_CORE_SYNTH_CACHE_HH_

/**
 * @file
 * Content-addressed cache of synthesized layer tensors.
 *
 * Tensor synthesis (clustered Beta maps, magnitude/clustered pruning)
 * is the dominant non-simulation cost of a cold sweep, and it is a
 * pure function of far fewer inputs than a simulation result: the
 * synthesis seed, the layer's fork index and shape, the effective
 * batch, the training progress, the model's sparsity calibration and
 * the synthesize-hook contract.  Accelerator geometry, the memory
 * model, the fidelity tier and the workload phase cannot change a
 * synthesized tensor, so a design-space sweep with N geometry variants
 * re-synthesizes every (model, progress, layer) cell N times for
 * nothing.  The SynthCache content-addresses synthesis the same way
 * the ResultStore content-addresses results: the first task of a key
 * synthesizes once, every sibling variant reuses the ready tensors.
 *
 * Concurrency: a per-key once-latch serialises the *first* synthesis
 * of each key (waiters block on that key alone, never on the global
 * map lock, so unrelated synthesis proceeds in parallel).  Entries are
 * immutable once published and handed out as shared_ptr-to-const, so
 * readers on any thread share one tensor allocation safely.
 *
 * Memory: a byte-budgeted LRU (TD_SYNTH_CACHE_BYTES or
 * RunConfig::synth_cache_bytes; the default comfortably holds the
 * zoo's largest model's working set) bounds resident tensor bytes.
 * Eviction — and disabling the cache entirely — is bit-identical to
 * synthesizing in place by construction: the same forked per-layer Rng
 * reproduces the same tensors, so the cache only ever changes
 * wall-clock, never output.
 */

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "models/model_zoo.hh"

namespace tensordash {

struct RunConfig;

/**
 * Content-addressed identity of one layer's synthesized tensors: an
 * FNV-1a fingerprint over exactly the synthesis-affecting inputs —
 * the synthesis seed, the training progress, the layer's serial fork
 * index and shape, the effective batch, the model's sparsity
 * calibration, and the sweep's synthesize-hook contract (salt, plus
 * the model name for custom hooks, which may seed off it).
 *
 * Deliberately absent: accelerator geometry, the memory model, the
 * fidelity tier, the workload phase and the write-back estimate
 * switch.  None of them can change a synthesized tensor, which is
 * exactly what lets N geometry variants share one synthesis.
 */
struct SynthKey
{
    uint64_t value = 0;

    /**
     * Key of layer @p layer of @p model at @p progress under
     * @p config.  Mirrors TaskKey::forOp's treatment of the effective
     * batch (a positive RunConfig::batch_override replaces the
     * model's) and of custom hooks (@p synthesis_salt is the hook's
     * content id; a non-zero salt also fingerprints the model name).
     *
     * Caching contract for hooks: a SweepSpec::synthesize hook must
     * depend only on the inputs this key covers — of its RunConfig
     * argument that is the seed and the batch override alone.  A hook
     * that read accelerator geometry would break content addressing
     * for synthesis exactly as reading sibling layers would break it
     * for results (see SweepSpec::synthesize).
     */
    static SynthKey forCell(const RunConfig &config,
                            const ModelProfile &model, size_t layer,
                            double progress,
                            uint64_t synthesis_salt = 0);

    bool operator==(const SynthKey &o) const { return value == o.value; }
};

/**
 * One ready cache entry: the synthesized tensors plus their three
 * measured sparsities, so power-gating observation and write-back
 * sparsity estimation never rescan a cached tensor.  Immutable after
 * publication.
 */
struct SynthTensors
{
    LayerTensors tensors;
    double act_sparsity = 0.0;
    double weight_sparsity = 0.0;
    double grad_sparsity = 0.0;

    /** Resident tensor bytes (the LRU accounting unit). */
    uint64_t bytes = 0;
};

/**
 * Effectiveness counters of one SynthCache: how many distinct keys
 * were synthesized and how many acquisitions were served from a ready
 * entry.  A cold N-variant geometry sweep shows
 * reuses == (N - 1) * keys — one synthesis per unique key.
 */
struct SynthCounters
{
    uint64_t keys = 0;   ///< synthesize executions (unique-key misses)
    uint64_t reuses = 0; ///< acquisitions served without synthesizing
};

/** Process-wide byte-budgeted LRU of synthesized layer tensors. */
class SynthCache
{
  public:
    SynthCache() = default;

    SynthCache(const SynthCache &) = delete;
    SynthCache &operator=(const SynthCache &) = delete;

    /** The process-wide cache every synth-cache-enabled run uses. */
    static SynthCache &shared();

    /** Produces one layer's tensors (called at most once per key while
     * the entry stays resident). */
    using SynthFn = std::function<LayerTensors()>;

    /**
     * Fetch the entry for @p key, synthesizing it via @p synthesize on
     * first acquisition.  Concurrent acquirers of one key block on the
     * key's own latch until the first finishes (the global lock is
     * never held across synthesis); the returned entry is immutable
     * and stays valid while the caller holds the pointer, even if the
     * LRU evicts it meanwhile.
     */
    std::shared_ptr<const SynthTensors>
    acquire(const SynthKey &key, const SynthFn &synthesize);

    /**
     * Set the resident-byte budget and evict least-recently-used
     * entries down to it.  A budget smaller than one entry evicts
     * everything not currently borrowed; acquisitions still work —
     * each one re-synthesizes.
     */
    void setBudgetBytes(uint64_t bytes);

    uint64_t budgetBytes() const;

    /** Bytes of ready entries currently resident (<= budget). */
    uint64_t residentBytes() const;

    /** Ready entries currently resident. */
    size_t entryCount() const;

    /** Snapshot of the lifetime synthesize/reuse counters. */
    SynthCounters counters() const;

    /** Zero the counters (benches isolating one sweep's traffic). */
    void resetCounters();

    /** Drop every resident entry (borrowed entries stay valid). */
    void clear();

    /**
     * Byte budget a run should use for @p configured
     * (RunConfig::synth_cache_bytes): a non-negative value wins (0 =
     * the cache is disabled), negative falls back to the
     * TD_SYNTH_CACHE_BYTES environment variable, else the built-in
     * default.
     */
    static uint64_t resolveBudget(int64_t configured);

    /**
     * Default resident-byte budget: 256 MiB, ~2.5x the largest zoo
     * model's full synthesis working set (VGG16, ~104 MiB) and enough
     * to hold the whole paper suite's single-progress-point grid
     * (~229 MiB), so every design-space figure reuses across its full
     * geometry axis.
     */
    static constexpr uint64_t kDefaultBudgetBytes = 256ull << 20;

  private:
    /** One key's slot: the once-latch plus the published entry.  The
     * latch lives outside the global lock so first-synthesis of
     * different keys runs in parallel. */
    struct Slot
    {
        std::once_flag once;
        /** Published by the latch winner before any waiter returns
         * (call_once orders the write); never read under mu_. */
        std::shared_ptr<const SynthTensors> value;
        /** Accounted bytes, guarded by mu_ (0 = not yet accounted —
         * in-flight slots are never evicted). */
        uint64_t bytes = 0;
        /** Recency position in lru_, guarded by mu_. */
        std::list<uint64_t>::iterator lru_it;
    };

    /** Evict LRU ready entries until resident_ <= budget_ (mu_
     * held). */
    void evictLocked();

    mutable std::mutex mu_;
    std::unordered_map<uint64_t, std::shared_ptr<Slot>> map_;
    /** Key recency, most recent first. */
    std::list<uint64_t> lru_;
    uint64_t budget_ = kDefaultBudgetBytes;
    uint64_t resident_ = 0;
    SynthCounters counters_;
};

} // namespace tensordash

#endif // TENSORDASH_CORE_SYNTH_CACHE_HH_
