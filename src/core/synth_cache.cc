#include "core/synth_cache.hh"

#include "common/env.hh"
#include "common/logging.hh"
#include "core/runner.hh"

namespace tensordash {

namespace {

/** Key-namespace tag ("syn1" little-endian): a SynthKey can never be
 * mistaken for a TaskKey built over the same fields. */
constexpr uint64_t kSynthKeyTag = 0x316e7973;

uint64_t
tensorsBytes(const LayerTensors &t)
{
    return (uint64_t)(t.acts.size() + t.weights.size() +
                      t.grads.size()) *
           sizeof(float);
}

} // namespace

SynthKey
SynthKey::forCell(const RunConfig &config, const ModelProfile &model,
                  size_t layer, double progress,
                  uint64_t synthesis_salt)
{
    TD_ASSERT(layer < model.layers.size(),
              "layer %zu out of range for model '%s' (%zu layers)",
              layer, model.name.c_str(), model.layers.size());
    FnvHasher h;
    h.u64(kSynthKeyTag);
    h.u64(config.seed);
    h.f64(progress);
    // The layer's Rng stream is fork number `layer` of the serially
    // seeded parent, a function of (seed, layer index) alone.
    h.u64(layer);
    // The *effective* batch shapes the acts/grads tensors.
    h.i64(config.batch_override > 0 ? config.batch_override
                                    : model.batch);
    model.sparsity.hashInto(h);
    model.layers[layer].hashInto(h);
    // The synthesize-hook contract, exactly as TaskKey fingerprints
    // it: the salt is the hook's content id, and a custom hook may
    // legitimately seed off the model's name.
    h.u64(synthesis_salt);
    if (synthesis_salt != 0)
        h.str(model.name);
    return SynthKey{h.value()};
}

SynthCache &
SynthCache::shared()
{
    static SynthCache cache;
    return cache;
}

std::shared_ptr<const SynthTensors>
SynthCache::acquire(const SynthKey &key, const SynthFn &synthesize)
{
    std::shared_ptr<Slot> slot;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(key.value);
        if (it != map_.end()) {
            slot = it->second;
            lru_.splice(lru_.begin(), lru_, slot->lru_it);
        } else {
            slot = std::make_shared<Slot>();
            lru_.push_front(key.value);
            slot->lru_it = lru_.begin();
            map_.emplace(key.value, slot);
        }
    }

    // First acquirer synthesizes under the key's own latch; everyone
    // else (including concurrent acquirers of this very key) waits
    // here without touching the global lock.  call_once orders the
    // value write before any waiter returns.
    bool synthesized = false;
    std::call_once(slot->once, [&] {
        auto entry = std::make_shared<SynthTensors>();
        entry->tensors = synthesize();
        entry->act_sparsity = entry->tensors.acts.sparsity();
        entry->weight_sparsity = entry->tensors.weights.sparsity();
        entry->grad_sparsity = entry->tensors.grads.sparsity();
        entry->bytes = tensorsBytes(entry->tensors);
        slot->value = std::move(entry);
        synthesized = true;
    });

    std::shared_ptr<const SynthTensors> value = slot->value;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (synthesized) {
            ++counters_.keys;
            // Account the new entry unless the slot was evicted while
            // synthesis was in flight (the caller's pointer keeps the
            // tensors alive either way).
            auto it = map_.find(key.value);
            if (it != map_.end() && it->second == slot) {
                slot->bytes = value->bytes;
                resident_ += slot->bytes;
                evictLocked();
            }
        } else {
            ++counters_.reuses;
        }
    }
    return value;
}

void
SynthCache::evictLocked()
{
    // Walk from the cold end, skipping in-flight slots (bytes == 0 —
    // they hold no accounted tensors yet and their synthesizer needs
    // the map entry to account them).
    auto it = lru_.end();
    while (resident_ > budget_ && it != lru_.begin()) {
        --it;
        auto mit = map_.find(*it);
        TD_ASSERT(mit != map_.end(), "LRU entry without a map slot");
        if (mit->second->bytes == 0)
            continue;
        resident_ -= mit->second->bytes;
        map_.erase(mit);
        it = lru_.erase(it);
    }
}

void
SynthCache::setBudgetBytes(uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(mu_);
    budget_ = bytes;
    evictLocked();
}

uint64_t
SynthCache::budgetBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return budget_;
}

uint64_t
SynthCache::residentBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return resident_;
}

size_t
SynthCache::entryCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    for (const auto &kv : map_)
        n += kv.second->bytes != 0;
    return n;
}

SynthCounters
SynthCache::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

void
SynthCache::resetCounters()
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_ = SynthCounters{};
}

void
SynthCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    // Ready entries drop; in-flight slots stay so their synthesizer
    // still finds (and skips accounting for) a consistent map.
    auto it = lru_.begin();
    while (it != lru_.end()) {
        auto mit = map_.find(*it);
        TD_ASSERT(mit != map_.end(), "LRU entry without a map slot");
        if (mit->second->bytes == 0) {
            ++it;
            continue;
        }
        resident_ -= mit->second->bytes;
        map_.erase(mit);
        it = lru_.erase(it);
    }
}

uint64_t
SynthCache::resolveBudget(int64_t configured)
{
    if (configured >= 0)
        return (uint64_t)configured;
    return env::byteKnob("TD_SYNTH_CACHE_BYTES", kDefaultBudgetBytes);
}

} // namespace tensordash
