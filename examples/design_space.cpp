/**
 * @file
 * Design-space exploration with the public API: sweep tile geometry,
 * staging depth and interconnect on one workload and report
 * speedup, area and compute-energy efficiency side by side -- the
 * kind of study section 4.4 performs.
 *
 * Each configuration's layers simulate as parallel tasks on the
 * shared pool; results are identical at any thread count.
 *
 *   ./build/examples/design_space [model] [threads]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/tensordash.hh"

using namespace tensordash;

namespace {

void
evaluate(const std::string &model, const char *label,
         AcceleratorConfig accel, int threads)
{
    RunConfig cfg;
    cfg.accel = accel;
    cfg.accel.max_sampled_macs = 200000;
    cfg.threads = threads;
    ModelRunner runner(cfg);
    ModelRunResult r = runner.runByName(model);
    AreaModel area(accel.geometry());
    std::printf("%-34s %6.2fx %9.2f mm2 %8.2fx\n", label, r.speedup(),
                area.tensorDashTotal().area_mm2, r.coreEfficiency());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string model = argc > 1 ? argv[1] : "VGG16";
    int threads = 0;
    if (argc > 2) {
        char *end = nullptr;
        long v = std::strtol(argv[2], &end, 10);
        if (end == argv[2] || *end != '\0' || v < 0 || v > 4096) {
            std::fprintf(stderr,
                         "bad THREADS '%s' (want an integer in "
                         "[0, 4096]; 0 = auto)\n", argv[2]);
            return 1;
        }
        threads = (int)v;
    }
    std::printf("Design space exploration on %s (%d simulation "
                "thread%s)\n", model.c_str(),
                threads > 0 ? threads : ThreadPool::defaultThreadCount(),
                (threads > 0 ? threads
                             : ThreadPool::defaultThreadCount()) == 1
                    ? "" : "s");
    std::printf("%-34s %7s %13s %9s\n", "configuration", "speedup",
                "compute area", "core eff");
    std::printf("%s\n", std::string(66, '-').c_str());

    AcceleratorConfig base;
    evaluate(model, "default (4x4, 3-deep, paper mux)", base, threads);

    AcceleratorConfig shallow = base;
    shallow.tile.depth = 2;
    evaluate(model, "2-deep staging (cheaper)", shallow, threads);

    AcceleratorConfig rows1 = base;
    rows1.tile.rows = 1;
    evaluate(model, "1 row per tile (no imbalance)", rows1, threads);

    AcceleratorConfig rows16 = base;
    rows16.tile.rows = 16;
    evaluate(model, "16 rows per tile", rows16, threads);

    AcceleratorConfig lookahead = base;
    lookahead.tile.interconnect = InterconnectKind::LookaheadOnly;
    evaluate(model, "lookahead-only interconnect", lookahead, threads);

    AcceleratorConfig xbar = base;
    xbar.tile.interconnect = InterconnectKind::Crossbar;
    evaluate(model, "idealised crossbar", xbar, threads);

    AcceleratorConfig bf16 = base;
    bf16.dtype = DataType::Bf16;
    evaluate(model, "bfloat16 datapath", bf16, threads);

    std::printf("\nAreas come from the Table 3 synthesis constants "
                "scaled to each geometry.\n");
    return 0;
}
