/**
 * @file
 * Training-time pruning amplifies TensorDash's benefit (paper
 * section 1 and the resnet50_DS90 / resnet50_SM90 workloads): train
 * the same CNN dense, with sparse-momentum pruning, and with dynamic
 * sparse reparameterization, and compare traced speedups.
 *
 *   ./build/examples/pruned_training
 */

#include <cstdio>
#include <memory>

#include "core/tensordash.hh"
#include "nn/data.hh"
#include "nn/network.hh"
#include "nn/pruning.hh"
#include "nn/trace.hh"

using namespace tensordash;

namespace {

Network
makeNet(Rng &rng)
{
    Network net;
    net.emplace<Conv2dLayer>("conv1", 1, 8, 3, ConvSpec{1, 1}, rng);
    net.emplace<ReluLayer>("relu1");
    net.emplace<MaxPool2x2Layer>("pool1");
    net.emplace<Conv2dLayer>("conv2", 8, 16, 3, ConvSpec{1, 1}, rng);
    net.emplace<ReluLayer>("relu2");
    net.emplace<MaxPool2x2Layer>("pool2");
    net.emplace<FlattenLayer>("flatten");
    net.emplace<LinearLayer>("fc", 16 * 4 * 4, 4, rng);
    return net;
}

struct RunOutcome
{
    double accuracy = 0.0;
    TraceStepResult trace;
};

RunOutcome
trainVariant(const char *label, Pruner *pruner, uint64_t seed)
{
    Rng rng(seed);
    PatternDataset data(4, 16, 0.25f, 13);
    Network net = makeNet(rng);
    Sgd opt(0.05f);
    if (pruner)
        pruner->initialize(net, rng);

    AcceleratorConfig cfg;
    cfg.tiles = 4;
    cfg.max_sampled_macs = 150000;
    // Pruned weights make the weight side worth scheduling: use the
    // Auto policies (the extension the ablation bench studies).
    cfg.fwd_side = FwdSide::Auto;
    cfg.bwd_data_side = BwdDataSide::Auto;
    TraceEvaluator evaluator(cfg);

    RunOutcome outcome;
    const int epochs = 8, steps = 15;
    for (int epoch = 0; epoch < epochs; ++epoch) {
        for (int step = 0; step < steps; ++step) {
            Batch batch = data.sample(16);
            LossResult r = net.trainStep(batch.images, batch.labels,
                                         opt);
            if (pruner)
                pruner->applyMasks(net);
            outcome.accuracy = r.accuracy;
        }
        if (pruner) {
            pruner->epochUpdate(net, opt, rng);
            pruner->applyMasks(net);
        }
    }
    Batch batch = data.sample(16);
    net.trainStep(batch.images, batch.labels, opt,
                  [&](const std::vector<LayerTrace> &traces) {
                      outcome.trace = evaluator.evaluate(traces);
                  });
    std::printf("%-24s acc %.2f  weights %.0f%% sparse  "
                "acts %.0f%%  grads %.0f%%  -> speedup %.2fx\n",
                label, outcome.accuracy,
                100.0 * outcome.trace.weight_sparsity,
                100.0 * outcome.trace.act_sparsity,
                100.0 * outcome.trace.grad_sparsity,
                outcome.trace.speedup);
    return outcome;
}

} // namespace

int
main()
{
    std::printf("Pruning during training amplifies TensorDash\n");
    std::printf("--------------------------------------------\n");
    trainVariant("dense training", nullptr, 21);

    SparseMomentumPruner sm(0.8);
    trainVariant("sparse momentum @80%", &sm, 21);

    DynamicSparseReparam ds(0.8);
    trainVariant("dynamic sparse @80%", &ds, 21);

    std::printf("\nPruned variants expose weight sparsity on top of "
                "the natural activation/gradient sparsity, which the "
                "Auto side policy converts into extra speedup.\n");
    return 0;
}
