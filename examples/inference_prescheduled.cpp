/**
 * @file
 * Inference with pre-scheduled tensors (paper sections 3.6/3.7): store
 * a fully connected layer's weights in scheduled (value, idx) form,
 * compare the footprint against dense and CompressingDMA storage,
 * decompress through the Fig. 12 mux stage, and verify the layer
 * output is untouched.  Also demonstrates the iterative backside
 * scheduler packing the layer's outputs as they are produced.
 *
 *   ./build/examples/inference_prescheduled
 */

#include <cstdio>

#include "core/tensordash.hh"
#include "sim/backside.hh"
#include "sim/prescheduler.hh"

using namespace tensordash;

int
main()
{
    std::printf("Pre-scheduled inference (sections 3.6/3.7)\n");
    std::printf("------------------------------------------\n");

    // A pruned fully connected layer: 512 -> 256, 85% weight sparsity.
    Rng rng(3);
    Tensor weights(256, 512, 1, 1);
    weights.fillSmallInt(rng, 7);
    applyMagnitudePruning(weights, 0.85);
    Tensor acts(8, 512, 1, 1);
    acts.fillSmallInt(rng, 5);
    acts.dropout(rng, 0.45f);

    MuxPattern pattern(16, 3);
    PreScheduler scheduler(pattern);

    // Pack every filter's weight stream (32 rows of 16 channels).
    uint64_t dense_bytes = 0, packed_bytes = 0, dma_bytes = 0;
    std::vector<ScheduledStream> packed_filters;
    for (int f = 0; f < weights.shape().n; ++f) {
        BlockStream stream(16, true);
        for (int r = 0; r < 512 / 16; ++r) {
            float row[16];
            for (int l = 0; l < 16; ++l)
                row[l] = weights.at(f, r * 16 + l, 0, 0);
            stream.appendValueRow(row);
        }
        ScheduledStream packed = scheduler.schedule(stream);
        dense_bytes += packed.denseBytes(4);
        packed_bytes += packed.packedBytes(4);
        packed_filters.push_back(std::move(packed));
    }
    std::vector<float> flat(weights.data(),
                            weights.data() + weights.size());
    dma_bytes = CompressingDma::compress(flat, 4).size();

    std::printf("weight storage: dense %.1f KB, scheduled form %.1f KB "
                "(%.2fx), CompressingDMA %.1f KB (%.2fx)\n",
                dense_bytes / 1024.0, packed_bytes / 1024.0,
                (double)dense_bytes / packed_bytes, dma_bytes / 1024.0,
                (double)dense_bytes / dma_bytes);

    // Decompress through the mirror mux stage and rebuild the tensor.
    Tensor restored(weights.shape());
    for (int f = 0; f < weights.shape().n; ++f) {
        BlockStream stream = scheduler.decompress(packed_filters[f]);
        for (int r = 0; r < stream.rows(); ++r)
            for (int l = 0; l < 16; ++l)
                restored.at(f, r * 16 + l, 0, 0) = stream.value(r, l);
    }
    std::printf("decompression lossless: %s\n",
                restored.maxAbsDiff(weights) == 0.0f ? "yes" : "NO");

    // The layer output computed from restored weights is identical.
    Tensor out_dense = fcForward(acts, weights);
    Tensor out_restored = fcForward(acts, restored);
    std::printf("layer output unchanged: %s\n",
                out_dense.maxAbsDiff(out_restored) == 0.0f ? "yes"
                                                           : "NO");

    // Inference speedup with both-side sparsity on this layer.
    AcceleratorConfig cfg;
    cfg.tiles = 4;
    cfg.max_sampled_macs = 0;
    cfg.fwd_side = FwdSide::Auto; // weights are the sparser side
    Accelerator accel(cfg);
    Tensor no_grads(1, 1, 1, 1);
    OpResult r = accel.runFcOp(TrainOp::Forward, acts, weights,
                               no_grads);
    std::printf("inference speedup on this layer: %.2fx (potential "
                "%.2fx)\n",
                r.speedup(), r.potentialSpeedup());

    // Backside scheduler: pack the outputs as the PEs produce them.
    BacksideScheduler backside(pattern);
    BlockStream out_stream(16, true);
    for (int n = 0; n < out_dense.shape().n; ++n) {
        for (int r = 0; r < out_dense.shape().c / 16; ++r) {
            float row[16];
            for (int l = 0; l < 16; ++l)
                row[l] = out_dense.at(n, r * 16 + l, 0, 0);
            out_stream.appendValueRow(row);
        }
    }
    uint64_t cycles = 0;
    ScheduledStream packed_out = backside.schedule(out_stream, &cycles);
    std::printf("backside scheduler: packed %d output rows into %zu "
                "(%.0f iterative cycles, %d cycles/row)\n",
                out_stream.rows(), packed_out.rows.size(),
                (double)cycles, backside.cyclesPerRow());
    return 0;
}
