/**
 * @file
 * Quickstart: build an accelerator with the paper's default
 * configuration (Table 2), run one sparse convolution layer through
 * all three training operations, and print speedup and energy.
 *
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/tensordash.hh"

using namespace tensordash;

int
main()
{
    std::printf("TensorDash quickstart\n");
    std::printf("---------------------\n");

    // A mid-sized convolution layer: 64 -> 96 channels, 14x14, 3x3.
    Rng rng(1);
    Tensor acts(4, 64, 14, 14);
    acts.fillNormal(rng);
    applyClusteredSparsity(acts, {0.60, 0.5}, rng); // post-ReLU-like
    Tensor weights(96, 64, 3, 3);
    weights.fillNormal(rng, 0.0f, 0.1f);
    Tensor grads(4, 96, 14, 14);
    grads.fillNormal(rng, 0.0f, 0.05f);
    applyClusteredSparsity(grads, {0.65, 0.5}, rng);
    ConvSpec spec{1, 1};

    std::printf("activation sparsity: %.1f%%, gradient sparsity: "
                "%.1f%%\n\n",
                100.0 * acts.sparsity(), 100.0 * grads.sparsity());

    AcceleratorConfig cfg; // Table 2 defaults
    Accelerator accel(cfg);

    double base_total = 0.0, td_total = 0.0;
    EnergyBreakdown energy_base, energy_td;
    for (int op = 0; op < 3; ++op) {
        OpResult r = accel.runConvOp((TrainOp)op, acts, weights, grads,
                                     spec, acts.sparsity());
        std::printf("%-4s speedup %.2fx  (potential %.2fx, baseline "
                    "cycles %.0f)\n",
                    trainOpName((TrainOp)op), r.speedup(),
                    r.potentialSpeedup(), r.base_cycles);
        base_total += r.base_cycles;
        td_total += r.td_cycles;
        energy_base.merge(accel.energy(r, false));
        energy_td.merge(accel.energy(r, true));
    }

    std::printf("\nlayer total: %.2fx speedup, %.2fx core / %.2fx "
                "overall energy efficiency\n",
                base_total / td_total,
                energy_base.core_j / energy_td.core_j,
                energy_base.total() / energy_td.total());

    // Numerical fidelity check: the functional path must reproduce the
    // reference convolution exactly (integer-valued data).
    Tensor ia(1, 32, 8, 8), iw(16, 32, 3, 3);
    Rng frng(2);
    ia.fillSmallInt(frng, 3);
    ia.dropout(frng, 0.5f);
    iw.fillSmallInt(frng, 3);
    AcceleratorConfig func_cfg;
    func_cfg.max_sampled_macs = 0;
    Accelerator func(func_cfg);
    Dataflow df(func_cfg.dataflow(true));
    Tensor got = func.runFunctional(df.lowerForward(ia, iw, spec));
    Tensor want = conv2dForward(ia, iw, spec);
    std::printf("functional check: max |diff| = %g (exact match: %s)\n",
                got.maxAbsDiff(want),
                got.maxAbsDiff(want) == 0.0f ? "yes" : "NO");
    return 0;
}
