/**
 * @file
 * Train a small CNN from scratch on the procedural pattern dataset and
 * evaluate TensorDash on the *real* operand traces of each epoch --
 * the trace-driven methodology of the paper (one sampled batch per
 * epoch), end to end, with genuine ReLU-induced dynamic sparsity.
 *
 *   ./build/examples/train_and_accelerate
 */

#include <cstdio>

#include "core/tensordash.hh"
#include "nn/data.hh"
#include "nn/network.hh"
#include "nn/trace.hh"

using namespace tensordash;

int
main()
{
    std::printf("Training a CNN and accelerating its traces\n");
    std::printf("------------------------------------------\n");

    Rng rng(7);
    PatternDataset data(4, 16, 0.25f, 11);

    Network net;
    net.emplace<Conv2dLayer>("conv1", 1, 8, 3, ConvSpec{1, 1}, rng);
    net.emplace<ReluLayer>("relu1");
    net.emplace<MaxPool2x2Layer>("pool1");
    net.emplace<Conv2dLayer>("conv2", 8, 16, 3, ConvSpec{1, 1}, rng);
    net.emplace<ReluLayer>("relu2");
    net.emplace<MaxPool2x2Layer>("pool2");
    net.emplace<FlattenLayer>("flatten");
    net.emplace<LinearLayer>("fc", 16 * 4 * 4, 4, rng);
    Sgd opt(0.05f);

    AcceleratorConfig accel_cfg;
    accel_cfg.tiles = 4;
    accel_cfg.max_sampled_macs = 200000;
    TraceEvaluator evaluator(accel_cfg);

    const int epochs = 8, steps_per_epoch = 15;
    std::printf("%-6s %-8s %-8s %-10s %-10s %s\n", "epoch", "loss",
                "acc", "act-spars", "grad-spars", "TD speedup");
    for (int epoch = 0; epoch < epochs; ++epoch) {
        double loss = 0.0, acc = 0.0;
        for (int step = 0; step < steps_per_epoch; ++step) {
            Batch batch = data.sample(16);
            LossResult r = net.trainStep(batch.images, batch.labels,
                                         opt);
            loss = r.loss;
            acc = r.accuracy;
        }
        // Trace one batch per epoch, exactly like the paper.
        Batch batch = data.sample(16);
        TraceStepResult t;
        net.trainStep(batch.images, batch.labels, opt,
                      [&](const std::vector<LayerTrace> &traces) {
                          t = evaluator.evaluate(traces);
                      });
        std::printf("%-6d %-8.3f %-8.2f %8.1f%%  %8.1f%%  %.2fx\n",
                    epoch, loss, acc, 100.0 * t.act_sparsity,
                    100.0 * t.grad_sparsity, t.speedup);
    }
    std::printf("\nThe speedup comes purely from the zeros the model "
                "learned to produce -- no annotations, no retraining "
                "changes.\n");
    return 0;
}
